open Atum_overlay

let rng () = Atum_util.Rng.create 42

(* ------------------------------------------------------------------ *)
(* Hgraph                                                              *)
(* ------------------------------------------------------------------ *)

let check_ok g =
  match Hgraph.check_invariants g with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_hgraph_create () =
  let g = Hgraph.create ~cycles:4 (rng ()) (List.init 20 Fun.id) in
  check_ok g;
  Alcotest.(check int) "vertex count" 20 (Hgraph.vertex_count g);
  Alcotest.(check int) "cycles" 4 (Hgraph.cycles g)

let test_hgraph_singleton () =
  let g = Hgraph.singleton ~cycles:3 7 in
  check_ok g;
  Alcotest.(check (list int)) "self loop" [ 7 ] (Hgraph.neighbor_set g 7);
  Alcotest.(check int) "self successor" 7 (Hgraph.successor g ~cycle:0 7)

let test_hgraph_succ_pred_inverse () =
  let g = Hgraph.create ~cycles:3 (rng ()) (List.init 15 Fun.id) in
  List.iter
    (fun v ->
      for c = 0 to 2 do
        let s = Hgraph.successor g ~cycle:c v in
        Alcotest.(check int) "pred(succ v) = v" v (Hgraph.predecessor g ~cycle:c s)
      done)
    (Hgraph.vertices g)

let test_hgraph_degree () =
  let g = Hgraph.create ~cycles:5 (rng ()) (List.init 30 Fun.id) in
  List.iter
    (fun v -> Alcotest.(check int) "2 links per cycle" 10 (List.length (Hgraph.neighbors g v)))
    (Hgraph.vertices g)

let test_hgraph_insert_after () =
  let g = Hgraph.create ~cycles:3 (rng ()) (List.init 10 Fun.id) in
  for c = 0 to 2 do
    Hgraph.insert_after g ~cycle:c ~after:c 100
  done;
  check_ok g;
  Alcotest.(check int) "grown" 11 (Hgraph.vertex_count g);
  Alcotest.(check int) "spliced" 100 (Hgraph.successor g ~cycle:0 0)

let test_hgraph_insert_duplicate_rejected () =
  let g = Hgraph.create ~cycles:1 (rng ()) [ 0; 1; 2 ] in
  Alcotest.check_raises "already present"
    (Invalid_argument "Hgraph.insert_after: vertex already on cycle") (fun () ->
      Hgraph.insert_after g ~cycle:0 ~after:0 1)

let test_hgraph_remove () =
  let g = Hgraph.create ~cycles:4 (rng ()) (List.init 12 Fun.id) in
  Hgraph.remove g 5;
  check_ok g;
  Alcotest.(check bool) "gone" false (Hgraph.mem g 5);
  Alcotest.(check int) "shrunk" 11 (Hgraph.vertex_count g)

let test_hgraph_remove_closes_gap () =
  let g = Hgraph.create ~cycles:1 (rng ()) [ 0; 1; 2 ] in
  let p = Hgraph.predecessor g ~cycle:0 1 and s = Hgraph.successor g ~cycle:0 1 in
  Hgraph.remove g 1;
  Alcotest.(check int) "pred now linked to succ" s (Hgraph.successor g ~cycle:0 p)

let test_hgraph_remove_to_singleton () =
  let g = Hgraph.create ~cycles:2 (rng ()) [ 0; 1 ] in
  Hgraph.remove g 1;
  check_ok g;
  Alcotest.(check int) "self loop" 0 (Hgraph.successor g ~cycle:0 0)

let prop_hgraph_random_ops_keep_invariants =
  QCheck.Test.make ~name:"random insert/remove sequences keep Hamiltonian cycles" ~count:60
    QCheck.(pair (int_range 0 5000) (int_range 1 5))
    (fun (seed, cycles) ->
      let r = Atum_util.Rng.create seed in
      let g = Hgraph.create ~cycles r [ 0; 1; 2 ] in
      let next_id = ref 3 in
      let alive = ref [ 0; 1; 2 ] in
      let ok = ref true in
      for _ = 1 to 30 do
        if !ok then begin
          if Atum_util.Rng.bool r || List.length !alive <= 2 then begin
            (* insert a new vertex at a random position on each cycle *)
            let v = !next_id in
            incr next_id;
            for c = 0 to cycles - 1 do
              let anchor = Atum_util.Rng.pick r !alive in
              Hgraph.insert_after g ~cycle:c ~after:anchor v
            done;
            alive := v :: !alive
          end
          else begin
            let v = Atum_util.Rng.pick r !alive in
            Hgraph.remove g v;
            alive := List.filter (fun x -> x <> v) !alive
          end;
          (match Hgraph.check_invariants g with Ok () -> () | Error _ -> ok := false)
        end
      done;
      !ok)

let prop_hgraph_neighbor_symmetry =
  QCheck.Test.make ~name:"overlay links are symmetric" ~count:60
    QCheck.(pair (int_range 0 5000) (int_range 1 5))
    (fun (seed, cycles) ->
      let r = Atum_util.Rng.create seed in
      let g = Hgraph.create ~cycles r (List.init 12 Fun.id) in
      List.for_all
        (fun v ->
          List.for_all
            (fun u -> List.mem v (Hgraph.neighbor_set g u))
            (Hgraph.neighbor_set g v))
        (Hgraph.vertices g))

(* ------------------------------------------------------------------ *)
(* Random walks                                                        *)
(* ------------------------------------------------------------------ *)

let test_walk_length_zero () =
  let g = Hgraph.create ~cycles:2 (rng ()) (List.init 8 Fun.id) in
  Alcotest.(check int) "stays" 3 (Random_walk.walk g (rng ()) ~start:3 ~length:0)

let test_walk_path_structure () =
  let g = Hgraph.create ~cycles:3 (rng ()) (List.init 16 Fun.id) in
  let r = rng () in
  let path = Random_walk.walk_path g r ~start:0 ~length:6 in
  Alcotest.(check int) "path length" 7 (List.length path);
  Alcotest.(check int) "starts at start" 0 (List.hd path);
  (* Consecutive path vertices must be overlay neighbors. *)
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "adjacent" true (List.mem b (Hgraph.neighbor_set g a));
      check rest
    | _ -> ()
  in
  check path

let test_walk_endpoint_stays_in_graph () =
  let g = Hgraph.create ~cycles:2 (rng ()) (List.init 10 Fun.id) in
  let r = rng () in
  for _ = 1 to 100 do
    let v = Random_walk.walk g r ~start:0 ~length:5 in
    Alcotest.(check bool) "member" true (Hgraph.mem g v)
  done

let test_bulk_choices_replay () =
  let g = Hgraph.create ~cycles:3 (rng ()) (List.init 16 Fun.id) in
  let r = rng () in
  let choices = Random_walk.bulk_choices r ~length:8 in
  Alcotest.(check int) "all hops drawn up front" 8 (List.length choices);
  let a = Random_walk.walk_with_choices g ~start:0 ~choices in
  let b = Random_walk.walk_with_choices g ~start:0 ~choices in
  Alcotest.(check int) "deterministic replay" a b

let test_choice_index_unbiased () =
  (* Regression for the [choice mod degree] bias: reducing pre-drawn
     hop decisions to link indices must stay uniform even when the
     degree does not divide the choice domain. *)
  let degree = 6 in
  let r = Atum_util.Rng.create 77 in
  let counts = Array.make degree 0 in
  List.iter
    (fun choice ->
      let i = Random_walk.choice_index ~degree choice in
      Alcotest.(check bool) "in range" true (i >= 0 && i < degree);
      Alcotest.(check int) "deterministic" i (Random_walk.choice_index ~degree choice);
      counts.(i) <- counts.(i) + 1)
    (Random_walk.bulk_choices r ~length:6000);
  Alcotest.(check bool) "uniform across links" true
    (Atum_util.Stats.chi2_uniform_test ~confidence:0.99 counts);
  Alcotest.check_raises "bad degree"
    (Invalid_argument "Random_walk.choice_index: degree must be positive") (fun () ->
      ignore (Random_walk.choice_index ~degree:0 1))

let test_replay_matches_live_distribution () =
  (* Replayed walks (bulk choices) and live walks (Rng.pick per hop)
     must draw endpoints from the same distribution: two-sample chi2
     test for homogeneity over the endpoint counts. *)
  let n = 16 in
  let g = Hgraph.create ~cycles:3 (rng ()) (List.init n Fun.id) in
  let trials = 4000 and length = 10 in
  let live = Array.make n 0 and replayed = Array.make n 0 in
  let r1 = Atum_util.Rng.create 101 and r2 = Atum_util.Rng.create 202 in
  for _ = 1 to trials do
    let v = Random_walk.walk g r1 ~start:0 ~length in
    live.(v) <- live.(v) + 1;
    let w =
      Random_walk.walk_with_choices g ~start:0
        ~choices:(Random_walk.bulk_choices r2 ~length)
    in
    replayed.(w) <- replayed.(w) + 1
  done;
  (* With equal trial counts the pooled expectation per cell is just
     the mean of the two observations; df = occupied cells - 1. *)
  let x2 = ref 0.0 and df = ref (-1) in
  Array.iteri
    (fun i a ->
      let b = replayed.(i) in
      if a + b > 0 then begin
        incr df;
        let e = float_of_int (a + b) /. 2.0 in
        let d1 = float_of_int a -. e and d2 = float_of_int b -. e in
        x2 := !x2 +. (((d1 *. d1) +. (d2 *. d2)) /. e)
      end)
    live;
  let p = Atum_util.Stats.chi2_cdf_complement ~df:!df !x2 in
  Alcotest.(check bool) (Printf.sprintf "same distribution (p=%.4f)" p) true (p >= 0.01)

let test_long_walk_mixes () =
  (* On a small dense graph, long walks should hit most vertices. *)
  let n = 16 in
  let g = Hgraph.create ~cycles:4 (rng ()) (List.init n Fun.id) in
  let r = rng () in
  let counts = Array.make n 0 in
  for _ = 1 to 3200 do
    let v = Random_walk.walk g r ~start:0 ~length:12 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c -> if c = 0 then Alcotest.fail (Printf.sprintf "vertex %d never reached" i))
    counts;
  Alcotest.(check bool) "roughly uniform" true
    (Atum_util.Stats.chi2_uniform_test ~confidence:0.999 counts)

(* ------------------------------------------------------------------ *)
(* Guideline (Fig 4)                                                   *)
(* ------------------------------------------------------------------ *)

let test_guideline_short_walk_fails () =
  Alcotest.(check bool) "1-hop walk is not uniform" false
    (Guideline.walk_is_uniform ~vgroups:64 ~hc:3 ~rwl:1 ~samples:6400 ~seed:1 ())

let test_guideline_long_walk_passes () =
  Alcotest.(check bool) "12-hop walk is uniform" true
    (Guideline.walk_is_uniform ~vgroups:64 ~hc:3 ~rwl:12 ~samples:640 ~seed:1 ())

let test_guideline_optimal_exists () =
  match Guideline.optimal_rwl ~vgroups:32 ~hc:4 ~seed:3 () with
  | None -> Alcotest.fail "no optimal rwl found"
  | Some rwl -> Alcotest.(check bool) "sensible range" true (rwl >= 2 && rwl <= 15)

let test_guideline_monotone_in_density () =
  (* Denser overlays need walks no longer than sparse ones (paper's
     guideline trend). Allow one step of noise. *)
  let r hc = Option.get (Guideline.optimal_rwl ~vgroups:128 ~hc ~seed:5 ()) in
  let sparse = r 2 and dense = r 10 in
  Alcotest.(check bool)
    (Printf.sprintf "rwl(hc=10)=%d <= rwl(hc=2)=%d + 1" dense sparse)
    true
    (dense <= sparse + 1)

let test_guideline_grows_with_system_size () =
  let r vgroups = Option.get (Guideline.optimal_rwl ~vgroups ~hc:6 ~seed:7 ()) in
  let small = r 8 and big = r 512 in
  Alcotest.(check bool)
    (Printf.sprintf "rwl(512)=%d >= rwl(8)=%d" big small)
    true (big >= small)

(* ------------------------------------------------------------------ *)
(* Grouping                                                            *)
(* ------------------------------------------------------------------ *)

let test_grouping_policy () =
  Alcotest.(check bool) "split above gmax" true (Grouping.needs_split ~gmax:8 ~size:9);
  Alcotest.(check bool) "no split at gmax" false (Grouping.needs_split ~gmax:8 ~size:8);
  Alcotest.(check bool) "merge below gmin" true (Grouping.needs_merge ~gmin:4 ~size:3);
  Alcotest.(check bool) "no merge at gmin" false (Grouping.needs_merge ~gmin:4 ~size:4)

let test_grouping_split_halves () =
  let r = rng () in
  let a, b = Grouping.split_halves r (List.init 9 Fun.id) in
  Alcotest.(check int) "first half" 5 (List.length a);
  Alcotest.(check int) "second half" 4 (List.length b);
  Alcotest.(check (list int)) "partition" (List.init 9 Fun.id)
    (List.sort compare (a @ b))

let test_grouping_target_size () =
  (* k=4, N=1024: 4 * log2(1024) = 40. *)
  Alcotest.(check int) "k log n" 40 (Grouping.target_group_size ~k:4 ~expected_n:1024);
  let gmin, gmax = Grouping.bounds_for ~k:4 ~expected_n:1024 in
  Alcotest.(check int) "gmin is half of gmax" (gmax / 2) gmin

let test_grouping_failure_probability_example () =
  (* The paper's §3.1 example: g=4, f=1, p=0.05 fails with ~0.014;
     g=20, f=9 fails with ~1.1e-8. *)
  let p4 = Grouping.vgroup_failure_probability ~g:4 ~f:1 ~node_failure_rate:0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "g=4 case: %.6f" p4)
    true
    (abs_float (p4 -. 0.014) < 0.001);
  let p20 = Grouping.vgroup_failure_probability ~g:20 ~f:9 ~node_failure_rate:0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "g=20 case: %g" p20)
    true
    (p20 < 1e-7 && p20 > 1e-9)

let test_grouping_bigger_groups_more_robust () =
  let p g = Grouping.vgroup_failure_probability ~g ~f:((g - 1) / 2) ~node_failure_rate:0.06 in
  Alcotest.(check bool) "monotone" true (p 20 < p 8 && p 8 < p 4)

let test_grouping_k_tradeoff () =
  (* §3.1: with k=4 and 6% faults, all vgroups robust w.p. ~0.999. *)
  let n = 1024 in
  let g = Grouping.target_group_size ~k:4 ~expected_n:n in
  let prob =
    Grouping.all_groups_robust_probability ~n ~g ~f:((g - 1) / 2) ~node_failure_rate:0.06
  in
  Alcotest.(check bool) (Printf.sprintf "all robust w.p. %.6f" prob) true (prob > 0.999)

let test_grouping_edge_probabilities () =
  Alcotest.(check (float 0.0)) "p=0" 0.0
    (Grouping.vgroup_failure_probability ~g:5 ~f:2 ~node_failure_rate:0.0);
  Alcotest.(check (float 0.0)) "p=1" 1.0
    (Grouping.vgroup_failure_probability ~g:5 ~f:2 ~node_failure_rate:1.0)

let prop_split_halves_partition =
  QCheck.Test.make ~name:"split_halves partitions with balanced sizes" ~count:100
    QCheck.(pair (int_range 0 2000) (int_range 1 40))
    (fun (seed, n) ->
      let r = Atum_util.Rng.create seed in
      let members = List.init n (fun i -> i * 3) in
      let a, b = Grouping.split_halves r members in
      List.sort compare (a @ b) = members
      && abs (List.length a - List.length b) <= 1)

let () =
  Alcotest.run "overlay"
    [
      ( "hgraph",
        [
          Alcotest.test_case "create" `Quick test_hgraph_create;
          Alcotest.test_case "singleton" `Quick test_hgraph_singleton;
          Alcotest.test_case "succ/pred inverse" `Quick test_hgraph_succ_pred_inverse;
          Alcotest.test_case "degree" `Quick test_hgraph_degree;
          Alcotest.test_case "insert" `Quick test_hgraph_insert_after;
          Alcotest.test_case "insert duplicate" `Quick test_hgraph_insert_duplicate_rejected;
          Alcotest.test_case "remove" `Quick test_hgraph_remove;
          Alcotest.test_case "remove closes gap" `Quick test_hgraph_remove_closes_gap;
          Alcotest.test_case "remove to singleton" `Quick test_hgraph_remove_to_singleton;
          QCheck_alcotest.to_alcotest prop_hgraph_random_ops_keep_invariants;
          QCheck_alcotest.to_alcotest prop_hgraph_neighbor_symmetry;
        ] );
      ( "random-walk",
        [
          Alcotest.test_case "zero length" `Quick test_walk_length_zero;
          Alcotest.test_case "path structure" `Quick test_walk_path_structure;
          Alcotest.test_case "stays in graph" `Quick test_walk_endpoint_stays_in_graph;
          Alcotest.test_case "bulk choices" `Quick test_bulk_choices_replay;
          Alcotest.test_case "choice index unbiased" `Quick test_choice_index_unbiased;
          Alcotest.test_case "replay matches live" `Quick
            test_replay_matches_live_distribution;
          Alcotest.test_case "long walks mix" `Quick test_long_walk_mixes;
        ] );
      ( "guideline",
        [
          Alcotest.test_case "short walk fails" `Quick test_guideline_short_walk_fails;
          Alcotest.test_case "long walk passes" `Quick test_guideline_long_walk_passes;
          Alcotest.test_case "optimal exists" `Quick test_guideline_optimal_exists;
          Alcotest.test_case "density trend" `Slow test_guideline_monotone_in_density;
          Alcotest.test_case "size trend" `Slow test_guideline_grows_with_system_size;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "policy" `Quick test_grouping_policy;
          Alcotest.test_case "split halves" `Quick test_grouping_split_halves;
          Alcotest.test_case "target size" `Quick test_grouping_target_size;
          Alcotest.test_case "paper example" `Quick test_grouping_failure_probability_example;
          Alcotest.test_case "robustness monotone" `Quick test_grouping_bigger_groups_more_robust;
          Alcotest.test_case "k tradeoff" `Quick test_grouping_k_tradeoff;
          Alcotest.test_case "edge probabilities" `Quick test_grouping_edge_probabilities;
          QCheck_alcotest.to_alcotest prop_split_halves_partition;
        ] );
    ]
