(* The durability layer (Atum_store): WAL framing, snapshot
   authentication, per-replica recovery — and System.restart on top of
   it, the crash→cold-restart→rejoin loop.

   Damage tolerance is the point: a truncated WAL tail is survivable
   (the valid prefix replays), a corrupted record or forged snapshot
   is not (the replica falls back to wiping the store and
   fresh-joining), and both paths must leave the registry consistent. *)

module Atum = Atum_core.Atum
module System = Atum_core.System
module Monitor = Atum_core.Monitor
module Backend = Atum_store.Backend
module Vfs = Atum_store.Vfs
module Wal = Atum_store.Wal
module Snapshot = Atum_store.Snapshot
module Replica = Atum_store.Replica
module Json = Atum_util.Json
module W = Atum_workload

let obj i = Json.Obj [ ("t", Json.String "deliver"); ("bid", Json.Int i) ]

let json = Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (Json.to_string j)) Json.equal

let wal_status =
  Alcotest.testable
    (fun fmt -> function
      | Wal.Complete -> Format.pp_print_string fmt "Complete"
      | Wal.Truncated { dropped_bytes } -> Format.fprintf fmt "Truncated %d" dropped_bytes
      | Wal.Corrupt { at_record } -> Format.fprintf fmt "Corrupt %d" at_record)
    ( = )

(* ------------------------------------------------------------------ *)
(* WAL framing                                                         *)
(* ------------------------------------------------------------------ *)

let test_wal_roundtrip () =
  let vfs = Vfs.create () in
  let b = Vfs.backend vfs in
  let records = List.init 20 obj in
  List.iter (fun r -> ignore (Wal.append b ~node:3 ~name:"wal" r)) records;
  let entries, status = Wal.replay b ~node:3 ~name:"wal" in
  Alcotest.check wal_status "complete" Wal.Complete status;
  Alcotest.(check (list json)) "all records back, in order" records entries;
  (* A different node's WAL is independent (and missing = empty). *)
  let entries, status = Wal.replay b ~node:4 ~name:"wal" in
  Alcotest.check wal_status "missing file is complete" Wal.Complete status;
  Alcotest.(check int) "missing file is empty" 0 (List.length entries)

let test_wal_truncated_tail () =
  let vfs = Vfs.create () in
  let b = Vfs.backend vfs in
  let sizes = List.map (fun r -> Wal.append b ~node:0 ~name:"wal" r) (List.init 5 obj) in
  let keep = List.fold_left ( + ) 0 sizes - 7 in
  Alcotest.(check bool) "truncate applied" true (Vfs.truncate vfs ~node:0 ~name:"wal" ~keep);
  let entries, status = Wal.replay b ~node:0 ~name:"wal" in
  (* The half-written last frame is dropped; the prefix survives. *)
  Alcotest.(check (list json)) "prefix survives" (List.init 4 obj) entries;
  match status with
  | Wal.Truncated { dropped_bytes } ->
    Alcotest.(check bool) "dropped tail measured" true (dropped_bytes > 0)
  | s -> Alcotest.check wal_status "expected Truncated" (Wal.Truncated { dropped_bytes = 1 }) s

let test_wal_corrupt_record () =
  let vfs = Vfs.create () in
  let b = Vfs.backend vfs in
  let s0 = Wal.append b ~node:0 ~name:"wal" (obj 0) in
  ignore (Wal.append b ~node:0 ~name:"wal" (obj 1));
  ignore (Wal.append b ~node:0 ~name:"wal" (obj 2));
  (* Flip a byte inside record 1's payload: its checksum must fail. *)
  Alcotest.(check bool) "corruption applied" true
    (Vfs.corrupt_byte vfs ~node:0 ~name:"wal" ~at:(s0 + Wal.header_bytes + 2));
  let entries, status = Wal.replay b ~node:0 ~name:"wal" in
  Alcotest.check wal_status "corrupt at record 1" (Wal.Corrupt { at_record = 1 }) status;
  Alcotest.(check (list json)) "prefix before the damage survives" [ obj 0 ] entries

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let test_snapshot_roundtrip_and_auth () =
  let vfs = Vfs.create () in
  let b = Vfs.backend vfs in
  let state = Json.Obj [ ("vid", Json.Int 2); ("delivered", Json.List [ Json.Int 1 ]) ] in
  ignore (Snapshot.save b ~key:"k" ~node:5 ~name:"snap" state);
  (match Snapshot.load b ~key:"k" ~node:5 ~name:"snap" with
  | Ok (Some j) -> Alcotest.check json "round-trips" state j
  | Ok None -> Alcotest.fail "snapshot vanished"
  | Error e -> Alcotest.fail e);
  (* Wrong key = forged snapshot: authentication must fail. *)
  (match Snapshot.load b ~key:"other" ~node:5 ~name:"snap" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged snapshot accepted");
  (* One flipped payload byte must also fail the HMAC. *)
  ignore (Vfs.corrupt_byte vfs ~node:5 ~name:"snap" ~at:(Snapshot.header_bytes + 1));
  (match Snapshot.load b ~key:"k" ~node:5 ~name:"snap" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupted snapshot accepted");
  (* Missing file is not an error — just no snapshot. *)
  match Snapshot.load b ~key:"k" ~node:6 ~name:"snap" with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "phantom snapshot"
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Replica manager                                                     *)
(* ------------------------------------------------------------------ *)

let test_replica_snapshot_cycle () =
  let vfs = Vfs.create () in
  let r = Replica.create ~snapshot_every:4 ~key:"k" (Vfs.backend vfs) in
  List.iter (fun i -> Replica.append r ~node:1 (obj i)) [ 0; 1; 2 ];
  Alcotest.(check bool) "below threshold" false (Replica.needs_snapshot r ~node:1);
  Replica.append r ~node:1 (obj 3);
  Alcotest.(check bool) "at threshold" true (Replica.needs_snapshot r ~node:1);
  Replica.save_snapshot r ~node:1 (Json.Obj [ ("state", Json.Int 42) ]);
  Alcotest.(check bool) "snapshot resets the counter" false (Replica.needs_snapshot r ~node:1);
  Replica.append r ~node:1 (obj 4);
  let rec_ = Replica.recover r ~node:1 in
  Alcotest.(check bool) "not corrupt" false (Replica.corrupt rec_);
  Alcotest.check json "snapshot back"
    (Json.Obj [ ("state", Json.Int 42) ])
    (match rec_.Replica.snapshot with Some s -> s | None -> Json.Null);
  Alcotest.(check (list json)) "only post-snapshot WAL entries" [ obj 4 ] rec_.Replica.entries;
  Alcotest.(check int) "appends counted" 5 (Replica.appends r);
  Alcotest.(check int) "snapshots counted" 1 (Replica.snapshots r);
  Alcotest.(check bool) "log bytes tracked" true (Replica.log_bytes r > 0);
  Alcotest.(check bool) "vfs counted syncs" true (Replica.fsyncs r > 0);
  Replica.wipe r ~node:1;
  let rec_ = Replica.recover r ~node:1 in
  Alcotest.(check bool) "wiped: no snapshot" true (Option.is_none rec_.Replica.snapshot);
  Alcotest.(check int) "wiped: no entries" 0 (List.length rec_.Replica.entries)

let test_replica_corrupt_detection () =
  let vfs = Vfs.create () in
  let r = Replica.create ~key:"k" (Vfs.backend vfs) in
  Replica.append r ~node:2 (obj 0);
  ignore (Vfs.corrupt_byte vfs ~node:2 ~name:Replica.wal_name ~at:(Wal.header_bytes + 1));
  Alcotest.(check bool) "corrupt WAL detected" true (Replica.corrupt (Replica.recover r ~node:2))

(* ------------------------------------------------------------------ *)
(* System.restart: the full crash → cold-restart → rejoin loop         *)
(* ------------------------------------------------------------------ *)

let build ?(n = 24) ?(seed = 11) () = W.Builder.grow ~n ~seed ()

let restart_setup () =
  let built = build () in
  let atum = built.W.Builder.atum in
  let sys = Atum.system atum in
  Atum.on_forward atum System.flood_forward;
  let vfs = Vfs.create ~now:(fun () -> Atum.now atum) () in
  ignore (System.attach_store sys (Vfs.backend vfs));
  let victim =
    match List.filter (fun m -> m <> built.W.Builder.first) (W.Builder.correct_members built) with
    | m :: _ -> m
    | [] -> Alcotest.fail "no victim available"
  in
  (built, atum, sys, vfs, victim)

let broadcast_settle built atum body =
  (match W.Builder.correct_members built with
  | from :: _ -> ignore (Atum.broadcast atum ~from body)
  | [] -> ());
  Atum.run_for atum 60.0

let test_restart_recovers_durable_state () =
  let built, atum, sys, _vfs, victim = restart_setup () in
  broadcast_settle built atum "pre-crash";
  let n = System.node sys victim in
  let delivered_before = Atum_util.Bitset.cardinal n.System.delivered in
  Alcotest.(check bool) "victim delivered the broadcast" true (delivered_before > 0);
  System.crash sys victim;
  Atum.run_for atum 30.0;
  System.restart sys victim;
  Atum.run_for atum 120.0;
  (match System.restart_reports sys with
  | [ r ] ->
    Alcotest.(check bool) "no fallback" false r.System.r_fallback;
    Alcotest.(check bool) "WAL entries replayed" true (r.System.r_replayed > 0);
    Alcotest.(check bool) "rejoined" true (Option.is_some r.System.r_rejoined_at);
    Alcotest.(check bool) "caught up" true (Option.is_some r.System.r_caught_up_at)
  | rs -> Alcotest.failf "expected one restart report, got %d" (List.length rs));
  Alcotest.(check int) "delivered set rebuilt from the store" delivered_before
    (Atum_util.Bitset.cardinal n.System.delivered);
  (* The restarted node keeps working: it delivers fresh broadcasts. *)
  broadcast_settle built atum "post-restart";
  Alcotest.(check bool) "delivers after restart" true
    (Atum_util.Bitset.cardinal n.System.delivered > delivered_before);
  (match System.check_consistency sys with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let mon = Monitor.attach sys in
  Alcotest.(check int) "monitor clean after restart" 0 (Monitor.sweep mon)

let test_restart_catchup_redelivers_missed () =
  let built, atum, sys, _vfs, victim = restart_setup () in
  broadcast_settle built atum "pre-crash";
  System.crash sys victim;
  (* Broadcasts the victim misses while down. *)
  broadcast_settle built atum "missed-1";
  broadcast_settle built atum "missed-2";
  let n = System.node sys victim in
  let before = Atum_util.Bitset.cardinal n.System.delivered in
  System.restart sys victim;
  Atum.run_for atum 120.0;
  Alcotest.(check bool) "catch-up delivered the missed broadcasts" true
    (Atum_util.Bitset.cardinal n.System.delivered > before);
  Alcotest.(check bool) "catch-up counted" true
    (Atum_sim.Metrics.counter (Atum.metrics atum) "recovery.catchup.delivered" > 0)

let test_restart_corrupt_store_falls_back () =
  let built, atum, sys, vfs, victim = restart_setup () in
  broadcast_settle built atum "pre-crash";
  System.crash sys victim;
  Atum.run_for atum 10.0;
  Alcotest.(check bool) "WAL damaged" true
    (Vfs.corrupt_byte vfs ~node:victim ~name:Replica.wal_name ~at:40);
  System.restart sys victim;
  Atum.run_for atum 300.0;
  (match System.restart_reports sys with
  | [ r ] ->
    Alcotest.(check bool) "fallback taken" true r.System.r_fallback;
    Alcotest.(check int) "nothing replayed from a corrupt store" 0 r.System.r_replayed;
    Alcotest.(check bool) "still rejoined" true (Option.is_some r.System.r_rejoined_at)
  | rs -> Alcotest.failf "expected one restart report, got %d" (List.length rs));
  Alcotest.(check int) "fallback counted" 1
    (Atum_sim.Metrics.counter (Atum.metrics atum) "recovery.fallback");
  (match System.check_consistency sys with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let mon = Monitor.attach sys in
  Alcotest.(check int) "monitor clean after fallback recovery" 0 (Monitor.sweep mon)

let test_restart_requires_crashed_node () =
  let _built, _atum, sys, _vfs, victim = restart_setup () in
  match System.restart sys victim with
  | () -> Alcotest.fail "restart of a live node must be rejected"
  | exception Invalid_argument _ -> ()

(* Same seed, same damage, byte-identical restart scenario artifacts. *)
let test_restart_scenario_deterministic () =
  let run () =
    let built = W.Builder.grow ~n:40 ~seed:5 ~monitor:false () in
    let r = W.Resilience.run ~messages_per_phase:4 ~attackers:0 ~restart:true built ~seed:5 () in
    Json.to_string (W.Resilience.to_json r)
  in
  Alcotest.(check string) "byte-identical restart runs" (run ()) (run ())

let () =
  Alcotest.run "store"
    [
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "truncated tail" `Quick test_wal_truncated_tail;
          Alcotest.test_case "corrupt record" `Quick test_wal_corrupt_record;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "roundtrip + auth" `Quick test_snapshot_roundtrip_and_auth ] );
      ( "replica",
        [
          Alcotest.test_case "snapshot cycle" `Quick test_replica_snapshot_cycle;
          Alcotest.test_case "corrupt detection" `Quick test_replica_corrupt_detection;
        ] );
      ( "restart",
        [
          Alcotest.test_case "recovers durable state" `Quick test_restart_recovers_durable_state;
          Alcotest.test_case "catch-up redelivers missed" `Quick
            test_restart_catchup_redelivers_missed;
          Alcotest.test_case "corrupt store falls back" `Quick
            test_restart_corrupt_store_falls_back;
          Alcotest.test_case "rejects live node" `Quick test_restart_requires_crashed_node;
          Alcotest.test_case "scenario deterministic" `Slow test_restart_scenario_deterministic;
        ] );
    ]
