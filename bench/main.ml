(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§6).  Each [figN] function prints the same
   rows/series the paper reports; EXPERIMENTS.md records the
   paper-vs-measured comparison.

   Usage:   dune exec bench/main.exe [-- fig4 fig6 ... micro] [--json] [--out-dir DIR]
            [--trace-cap EVENTS]
   Scale:   ATUM_BENCH_SCALE=quick|default|full  (default: default)
   Trace:   --trace-cap / ATUM_TRACE_CAP size the trace ring; default
            auto-sizes by tier (Trace.capacity_for_scale)

   With [--json] (or ATUM_BENCH_JSON=DIR) every figure also writes a
   machine-readable BENCH_<fig>.json artifact into the out-dir
   (default _artifacts/, created if missing) carrying the same rows as
   the text output plus seed, scale, build provenance and wall time —
   see the schema note in EXPERIMENTS.md.  All fields except wall_s
   are deterministic; set ATUM_BENCH_JSON_CANON=1 to zero wall_s and
   get byte-identical files across same-seed runs.                      *)

module Params = Atum_core.Params
module Atum = Atum_core.Atum
module W = Atum_workload
module Json = Atum_util.Json

let scale =
  match Sys.getenv_opt "ATUM_BENCH_SCALE" with
  | Some ("quick" | "QUICK") -> `Quick
  | Some ("full" | "FULL") -> `Full
  | _ -> `Default

let scale_name =
  match scale with `Quick -> "quick" | `Default -> "default" | `Full -> "full"

let json_dir = ref (Sys.getenv_opt "ATUM_BENCH_JSON")

(* Trace ring sizing for traced benchmarks: --trace-cap flag, else
   ATUM_TRACE_CAP, else auto-size by tier so 100k/1M runs don't wrap
   the ring within their first simulated seconds. *)
let trace_cap_flag = ref 0

let trace_cap_for ~n =
  if !trace_cap_flag > 0 then !trace_cap_flag
  else
    match Sys.getenv_opt "ATUM_TRACE_CAP" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some cap when cap > 0 -> cap
      | _ -> Atum_sim.Trace.capacity_for_scale ~nodes:n)
    | None -> Atum_sim.Trace.capacity_for_scale ~nodes:n

(* Provenance for BENCH_*.json build_info; basename so artifacts don't
   depend on where the binary was invoked from. *)
let cmdline =
  match Array.to_list Sys.argv with
  | [] -> []
  | argv0 :: rest -> Filename.basename argv0 :: rest

let emit_json ~fig ~seed ~wall_s ?extra rows =
  match !json_dir with
  | None -> ()
  | Some dir ->
    let doc =
      W.Report.envelope ~cmdline ~fig ~scale:scale_name ~seed ~wall_s ?extra ~rows ()
    in
    let path = W.Report.write ~dir ~fig doc in
    Printf.printf "  [json] wrote %s\n%!" path

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Append figure-specific fields to a row built by a shared helper. *)
let with_fields extra = function
  | Json.Obj fields -> Json.Obj (extra @ fields)
  | j -> j

(* ------------------------------------------------------------------ *)
(* Table 1: system parameters                                          *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: system parameters (defaults in this reproduction)";
  let entries =
    [ ("sync default", Params.default); ("async default", Params.default_async) ]
    @ List.map
        (fun n -> (Printf.sprintf "sized for N=%d" n, Params.for_system_size n))
        [ 50; 200; 800; 1400 ]
  in
  List.iter
    (fun (label, (p : Params.t)) ->
      Printf.printf "  %-22s hc=%-2d rwl=%-2d gmin=%-2d gmax=%-2d round=%.1fs\n" label
        p.Params.hc p.rwl p.gmin p.gmax p.round_duration)
    entries;
  Printf.printf "  typical ranges (paper): hc 2..12, rwl 4..15, gmin = gmax/2, k 3..7\n%!";
  emit_json ~fig:"table1" ~seed:0 ~wall_s:0.0
    (List.map
       (fun (label, (p : Params.t)) ->
         Json.Obj
           [
             ("label", Json.String label);
             ("hc", Json.Int p.Params.hc);
             ("rwl", Json.Int p.rwl);
             ("gmin", Json.Int p.gmin);
             ("gmax", Json.Int p.gmax);
             ("round_s", Json.Float p.round_duration);
           ])
       entries)

(* ------------------------------------------------------------------ *)
(* Fig 4: configuration guideline                                      *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "Fig 4: optimal random-walk length (rwl) per overlay density (hc)";
  let vgroup_counts =
    match scale with
    | `Quick -> [ 8; 32; 128 ]
    | `Default -> [ 8; 32; 128; 512; 2048 ]
    | `Full -> [ 8; 32; 128; 512; 2048; 8192 ]
  in
  let hc_values = [ 2; 4; 6; 8; 10; 12 ] in
  Printf.printf "  %-10s" "vgroups";
  List.iter (fun hc -> Printf.printf " hc=%-3d" hc) hc_values;
  print_newline ();
  let rows, dt =
    wall (fun () -> Atum_overlay.Guideline.figure4 ~vgroup_counts ~hc_values ~seed:42 ())
  in
  List.iter
    (fun (vg, cols) ->
      Printf.printf "  %-10d" vg;
      List.iter
        (fun (_, rwl) ->
          match rwl with
          | Some r -> Printf.printf " %-6d" r
          | None -> Printf.printf " %-6s" "-")
        cols;
      print_newline ())
    rows;
  Printf.printf "  (chi-squared uniformity at 0.99 confidence; %.1fs)\n%!" dt;
  emit_json ~fig:"fig4" ~seed:42 ~wall_s:dt
    (List.map
       (fun (vg, cols) ->
         Json.Obj
           [
             ("vgroups", Json.Int vg);
             ( "optimal_rwl",
               Json.List
                 (List.map
                    (fun (hc, rwl) ->
                      Json.Obj
                        [
                          ("hc", Json.Int hc);
                          ("rwl", match rwl with Some r -> Json.Int r | None -> Json.Null);
                        ])
                    cols) );
           ])
       rows)

(* ------------------------------------------------------------------ *)
(* Fig 6: growth speed                                                 *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "Fig 6: growth speed (system size over simulated time)";
  let targets =
    match scale with `Quick -> [ 200 ] | `Default -> [ 800; 1400 ] | `Full -> [ 800; 1400 ]
  in
  let protocols =
    match scale with `Quick -> [ Params.Sync ] | _ -> [ Params.Sync; Params.Async ]
  in
  let rows = ref [] in
  let total_wall = ref 0.0 in
  List.iter
    (fun protocol ->
      List.iter
        (fun target ->
          let params = Params.for_system_size ~protocol ~seed:7 target in
          let r, dt =
            wall (fun () ->
                W.Growth.run ~params ~target ~seed:7 ~sample_every:250.0 ())
          in
          total_wall := !total_wall +. dt;
          let proto_name =
            match protocol with Params.Sync -> "SYNC" | Params.Async -> "ASYNC"
          in
          Printf.printf
            "  %-5s target=%d: reached %d in %.0f simulated s; join latency p50=%.1fs p90=%.1fs (wall %.1fs)\n"
            proto_name target r.W.Growth.final_size r.duration r.join_latency_p50
            r.join_latency_p90 dt;
          Printf.printf "    curve (t, size): ";
          List.iter
            (fun (p : W.Growth.point) ->
              Printf.printf "(%.0f, %d) " p.W.Growth.time p.W.Growth.size)
            r.curve;
          Printf.printf "\n%!";
          rows := W.Report.growth_row ~protocol:proto_name ~target r :: !rows)
        targets)
    protocols;
  emit_json ~fig:"fig6" ~seed:7 ~wall_s:!total_wall (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Fig 7: churn tolerance                                              *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  section "Fig 7: maximal tolerated churn (re-joins/minute)";
  let sizes =
    match scale with
    | `Quick -> [ 50; 100 ]
    | `Default -> [ 50; 100; 200 ]
    | `Full -> [ 50; 100; 200; 400; 800 ]
  in
  let configs =
    [
      ("SYNC (rwl=6, hc=8)", fun n -> { (Params.for_system_size n) with Params.rwl = 6; hc = 8 });
      ("SYNC (rwl=11, hc=5)", fun n -> { (Params.for_system_size n) with Params.rwl = 11; hc = 5 });
      ( "ASYNC (guideline)",
        fun n -> Params.for_system_size ~protocol:Params.Async n );
    ]
  in
  let rows = ref [] in
  let total_wall = ref 0.0 in
  List.iter
    (fun (label, mk) ->
      Printf.printf "  %s\n" label;
      List.iter
        (fun n ->
          let params = { (mk n) with Params.seed = 19 + n } in
          let (rate, probes), dt =
            wall (fun () ->
                let built = W.Builder.grow ~params ~n ~seed:(19 + n) () in
                W.Churn.max_sustained built ~seed:(23 + n))
          in
          total_wall := !total_wall +. dt;
          Printf.printf
            "    N=%-4d max sustained %.0f re-joins/min (%.1f%%/min), probes=%d (wall %.1fs)\n%!"
            n rate
            (100.0 *. rate /. float_of_int n)
            (List.length probes) dt;
          rows :=
            Json.Obj
              [
                ("config", Json.String label);
                ("n", Json.Int n);
                ("max_sustained_per_min", Json.Float rate);
                ("pct_per_min", Json.Float (100.0 *. rate /. float_of_int n));
                ("probes", Json.Int (List.length probes));
              ]
            :: !rows)
        sizes)
    configs;
  emit_json ~fig:"fig7" ~seed:19 ~wall_s:!total_wall (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Fig 8: group communication latency                                  *)
(* ------------------------------------------------------------------ *)

let pp_cdf_line label latencies =
  if latencies = [] then Printf.printf "    %-24s (no samples)\n" label
  else begin
    let p q = Atum_util.Stats.percentile latencies q in
    Printf.printf
      "    %-24s n=%-7d p10=%6.2f p50=%6.2f p90=%6.2f p99=%6.2f max=%7.2f\n" label
      (List.length latencies) (p 10.0) (p 50.0) (p 90.0) (p 99.0)
      (List.fold_left max 0.0 latencies)
  end

let cdf_row ~label latencies =
  let pct p =
    if latencies = [] then Json.Null else Json.Float (Atum_util.Stats.percentile latencies p)
  in
  Json.Obj
    [
      ("label", Json.String label);
      ("n", Json.Int (List.length latencies));
      ("p10_s", pct 10.0);
      ("p50_s", pct 50.0);
      ("p90_s", pct 90.0);
      ("p99_s", pct 99.0);
      ( "max_s",
        if latencies = [] then Json.Null else Json.Float (List.fold_left max 0.0 latencies) );
    ]

let fig8 () =
  section "Fig 8: group communication latency CDF (seconds)";
  let messages = match scale with `Quick -> 30 | `Default -> 100 | `Full -> 300 in
  let sizes = match scale with `Quick -> [ 200 ] | _ -> [ 200; 400; 800 ] in
  let rows = ref [] in
  let total_wall = ref 0.0 in
  (* Per-run metrics merged into one aggregate, exported with the
     artifact — the counters behind the CDFs (deliveries, walks,
     suppressed exchanges) summed over every Atum run of the figure. *)
  let agg = Atum_sim.Metrics.create () in
  let run_one label ~protocol ~n ~byz =
    let params =
      { (Params.for_system_size ~protocol n) with Params.seed = 47 + n; round_duration = 1.5 }
    in
    let (built, r), dt =
      wall (fun () ->
          let built = W.Builder.grow ~params ~byzantine:byz ~n:(n + byz) ~seed:(47 + n) () in
          (built, W.Latency_exp.run built ~messages ~gap:2.0 ~seed:(53 + n)))
    in
    total_wall := !total_wall +. dt;
    Atum_sim.Metrics.merge ~into:agg
      (Atum_core.Atum.metrics built.W.Builder.atum);
    pp_cdf_line label r.W.Latency_exp.latencies;
    Printf.printf "      delivery fraction %.4f (wall %.1fs)\n%!" r.delivery_fraction dt;
    let proto_name = match protocol with Params.Sync -> "SYNC" | Params.Async -> "ASYNC" in
    rows :=
      with_fields [ ("protocol", Json.String proto_name) ] (W.Report.latency_row ~label r)
      :: !rows
  in
  Printf.printf "  Atum SYNC (rounds of 1.5s):\n";
  List.iter (fun n -> run_one (Printf.sprintf "N = %d" n) ~protocol:Params.Sync ~n ~byz:0) sizes;
  run_one "N = 850* (50 Byz)" ~protocol:Params.Sync ~n:800 ~byz:50;
  Printf.printf "  Atum ASYNC (WAN):\n";
  List.iter (fun n -> run_one (Printf.sprintf "N = %d" n) ~protocol:Params.Async ~n ~byz:0) sizes;
  run_one "N = 850* (50 Byz)" ~protocol:Params.Async ~n:800 ~byz:50;
  Printf.printf "  Baselines (N = 850):\n";
  let g = Atum_baselines.Gossip.run ~n:850 ~fanout:10 ~seed:3 in
  let gossip_lats = Atum_baselines.Gossip.latencies g ~round_duration:1.5 in
  pp_cdf_line "S.Gossip" gossip_lats;
  rows :=
    with_fields [ ("protocol", Json.String "baseline") ] (cdf_row ~label:"S.Gossip" gossip_lats)
    :: !rows;
  let smr = Atum_baselines.Global_smr.run ~n:850 ~faults:50 ~round_duration:1.5 in
  let smr_lats = Atum_baselines.Global_smr.latencies smr ~n:850 in
  pp_cdf_line "S.SMR (850*, 50 faults)" smr_lats;
  rows :=
    with_fields
      [ ("protocol", Json.String "baseline") ]
      (cdf_row ~label:"S.SMR (850*, 50 faults)" smr_lats)
    :: !rows;
  Printf.printf "%!";
  emit_json ~fig:"fig8" ~seed:47 ~wall_s:!total_wall
    ~extra:
      [
        ("messages", Json.Int messages);
        ("metrics_aggregate", Atum_sim.Metrics.to_json agg);
      ]
    (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Fig 9: AShare read performance                                      *)
(* ------------------------------------------------------------------ *)

let fig9 () =
  section "Fig 9: AShare read performance (latency per MB, seconds)";
  let rows, dt = wall (fun () -> W.Ashare_exp.fig9 ~seed:61 ()) in
  Printf.printf "  %-10s %-8s %-14s %-16s\n" "size (MB)" "NFS4" "AShare simple" "AShare parallel";
  List.iter
    (fun r ->
      Printf.printf "  %-10.0f %-8.3f %-14.3f %-16.3f\n" r.W.Ashare_exp.size_mb r.nfs r.simple
        r.parallel)
    rows;
  Printf.printf "  (wall %.1fs)\n%!" dt;
  emit_json ~fig:"fig9" ~seed:61 ~wall_s:dt
    (List.map
       (fun (r : W.Ashare_exp.fig9_row) ->
         Json.Obj
           [
             ("size_mb", Json.Float r.W.Ashare_exp.size_mb);
             ("nfs_s_per_mb", Json.Float r.nfs);
             ("simple_s_per_mb", Json.Float r.simple);
             ("parallel_s_per_mb", Json.Float r.parallel);
           ])
       rows)

(* ------------------------------------------------------------------ *)
(* Figs 10 & 11: Byzantine impact on AShare reads                      *)
(* ------------------------------------------------------------------ *)

let fig10_11 () =
  let run ~fig ~n ~files =
    section
      (Printf.sprintf "Fig %d: AShare read latency with Byzantine replicas (%d nodes, %d files)"
         fig n files);
    let rows, dt =
      wall (fun () -> W.Ashare_exp.byzantine_reads ~n ~files ~byzantine:7 ~rho:8 ~seed:67)
    in
    Printf.printf "  %-10s %-22s %-22s\n" "replicas" "all correct (s/MB)" "1-6 faulty (s/MB)";
    List.iter
      (fun r ->
        Printf.printf "  %-10d %-22.3f %-22.3f\n" r.W.Ashare_exp.replicas
          r.clean_latency_per_mb r.faulty_latency_per_mb)
      rows;
    Printf.printf "  (wall %.1fs)\n%!" dt;
    emit_json ~fig:(Printf.sprintf "fig%d" fig) ~seed:67 ~wall_s:dt
      ~extra:[ ("n", Json.Int n); ("files", Json.Int files) ]
      (List.map
         (fun (r : W.Ashare_exp.fig10_row) ->
           Json.Obj
             [
               ("replicas", Json.Int r.W.Ashare_exp.replicas);
               ("clean_s_per_mb", Json.Float r.clean_latency_per_mb);
               ("faulty_s_per_mb", Json.Float r.faulty_latency_per_mb);
             ])
         rows)
  in
  let files = match scale with `Quick -> 65 | `Default -> 260 | `Full -> 520 in
  run ~fig:10 ~n:50 ~files;
  run ~fig:11 ~n:100 ~files

(* ------------------------------------------------------------------ *)
(* Fig 12: AStream latency                                             *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  section "Fig 12: AStream tier-2 latency for a 1 MB/s stream (milliseconds)";
  let rows, dt = wall (fun () -> W.Astream_exp.run ~seed:71 ()) in
  Printf.printf "  %-8s %-16s %-16s %-18s %-18s\n" "N" "Single (model)" "Double (model)"
    "Single (push-pull)" "Double (push-pull)";
  List.iter
    (fun r ->
      Printf.printf "  %-8d %-16.0f %-16.0f %-18.0f %-18.0f\n" r.W.Astream_exp.n r.single_ms
        r.double_ms r.single_sim_ms r.double_sim_ms)
    rows;
  Printf.printf "  (wall %.1fs)\n%!" dt;
  emit_json ~fig:"fig12" ~seed:71 ~wall_s:dt
    (List.map
       (fun (r : W.Astream_exp.row) ->
         Json.Obj
           [
             ("n", Json.Int r.W.Astream_exp.n);
             ("single_model_ms", Json.Float r.single_ms);
             ("double_model_ms", Json.Float r.double_ms);
             ("single_sim_ms", Json.Float r.single_sim_ms);
             ("double_sim_ms", Json.Float r.double_sim_ms);
           ])
       rows)

(* ------------------------------------------------------------------ *)
(* Fig 13: exchange completion under aggressive growth                 *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  section "Fig 13: exchange completion rate vs. join rate (growth to N=400)";
  let target = match scale with `Quick -> 150 | _ -> 400 in
  Printf.printf "  %-10s %-12s %-12s %-12s %-10s\n" "join rate" "completed" "suppressed"
    "completion" "time (s)";
  let rows = ref [] in
  let total_wall = ref 0.0 in
  List.iter
    (fun rate ->
      let r, dt =
        wall (fun () ->
            W.Growth.run
              ~params:(Params.for_system_size ~seed:73 target)
              ~join_rate_per_min:rate ~target ~seed:73 ())
      in
      total_wall := !total_wall +. dt;
      Printf.printf "  %-10s %-12d %-12d %-12.3f %-10.0f (wall %.1fs)\n%!"
        (Printf.sprintf "%.0f%%/min" (100.0 *. rate))
        r.W.Growth.exchanges_completed r.exchanges_suppressed r.completion_rate r.duration dt;
      rows :=
        with_fields
          [ ("join_rate_per_min", Json.Float rate) ]
          (W.Report.growth_row ~protocol:"SYNC" ~target r)
        :: !rows)
    [ 0.08; 0.20; 0.24 ];
  emit_json ~fig:"fig13" ~seed:73 ~wall_s:!total_wall (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Ablations: design choices DESIGN.md calls out                       *)
(* ------------------------------------------------------------------ *)

let ablation () =
  section "Ablation 1: random-walk shuffling vs. a join-leave attack";
  Printf.printf
    "  an adversary re-joins its nodes to concentrate them in one vgroup;\n    \  'concentration' is the worst per-vgroup Byzantine fraction (0.5 = captured)\n";
  let rows = ref [] in
  let total_wall = ref 0.0 in
  List.iter
    (fun shuffling ->
      let r, dt =
        wall (fun () -> W.Ablation.join_leave_attack ~shuffling ~seed:81 ())
      in
      total_wall := !total_wall +. dt;
      Printf.printf
        "  shuffling %-3s: %.1f%% attackers -> concentration %.2f%s (wall %.1fs)\n%!"
        (if shuffling then "ON" else "OFF")
        (100.0 *. r.W.Ablation.byzantine_fraction)
        r.concentration
        (if r.any_vgroup_captured then "  ** vgroup captured **" else "")
        dt;
      rows :=
        Json.Obj
          [
            ("section", Json.String "join_leave_attack");
            ("shuffling", Json.Bool shuffling);
            ("byzantine_fraction", Json.Float r.W.Ablation.byzantine_fraction);
            ("concentration", Json.Float r.concentration);
            ("any_vgroup_captured", Json.Bool r.any_vgroup_captured);
          ]
        :: !rows)
    [ true; false ];
  section "Ablation 2: forward-callback policies (latency vs. traffic, §3.3.4)";
  let policy_rows, dt = wall (fun () -> W.Ablation.forward_policies ~seed:83 ()) in
  total_wall := !total_wall +. dt;
  Printf.printf "  %-20s %-10s %-12s %-12s\n" "policy" "delivery" "p50 latency" "msgs/bcast";
  List.iter
    (fun r ->
      Printf.printf "  %-20s %-10.3f %-12.2f %-12.0f\n" r.W.Ablation.label
        r.delivery_fraction r.p50_latency r.messages_per_broadcast;
      rows :=
        Json.Obj
          [
            ("section", Json.String "forward_policies");
            ("policy", Json.String r.W.Ablation.label);
            ("delivery_fraction", Json.Float r.delivery_fraction);
            ("p50_latency_s", Json.Float r.p50_latency);
            ("messages_per_broadcast", Json.Float r.messages_per_broadcast);
          ]
        :: !rows)
    policy_rows;
  Printf.printf "  (wall %.1fs)\n%!" dt;
  emit_json ~fig:"ablation" ~seed:81 ~wall_s:!total_wall (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Extension: the DHT alternative of footnote 5                        *)
(* ------------------------------------------------------------------ *)

let dht_bench () =
  section "Extension (footnote 5): Chord DHT vs. AShare's broadcast-replicated index";
  let module Dht = Atum_apps.Dht in
  let rows = ref [] in
  Printf.printf "  Lookup cost scales logarithmically:\n";
  Printf.printf "    %-8s %-12s\n" "N" "mean hops";
  List.iter
    (fun n ->
      let d = Dht.build ~node_ids:(List.init n Fun.id) () in
      let hops = Dht.mean_lookup_hops d ~samples:500 ~seed:3 in
      Printf.printf "    %-8d %-12.2f\n" n hops;
      rows :=
        Json.Obj
          [ ("section", Json.String "hops"); ("n", Json.Int n); ("mean_hops", Json.Float hops) ]
        :: !rows)
    [ 64; 256; 1024; 4096 ];
  Printf.printf
    "  ...but quiet Byzantine routers silently swallow queries (N=512, 4 replicas,\n    \  3 retries), where Atum's broadcast index keeps a full copy at every node:\n";
  Printf.printf "    %-12s %-22s %-22s\n" "byzantine" "DHT lookup success" "broadcast index";
  List.iter
    (fun pct ->
      let n = 512 in
      let d = Dht.build ~node_ids:(List.init n Fun.id) () in
      let rng = Atum_util.Rng.create (100 + pct) in
      let byz =
        Atum_util.Rng.sample_without_replacement rng (n * pct / 100) (List.init n Fun.id)
      in
      List.iter (Dht.mark_byzantine d) byz;
      let success = Dht.lookup_success_rate d ~samples:600 ~seed:7 in
      Printf.printf "    %-12s %-22.3f %-22s\n"
        (Printf.sprintf "%d%%" pct)
        success "1.000 (local read)";
      rows :=
        Json.Obj
          [
            ("section", Json.String "byzantine");
            ("byzantine_pct", Json.Int pct);
            ("dht_lookup_success", Json.Float success);
            ("broadcast_index_success", Json.Float 1.0);
          ]
        :: !rows)
    [ 0; 5; 10; 20; 30 ];
  Printf.printf "  Churn: 20%% of 512 nodes leave between stabilizations:\n";
  let d = Dht.build ~node_ids:(List.init 512 Fun.id) () in
  let rng = Atum_util.Rng.create 11 in
  List.iter (Dht.mark_dead d)
    (Atum_util.Rng.sample_without_replacement rng 102 (List.init 512 Fun.id));
  let churn_row phase d =
    let success = Dht.lookup_success_rate d ~samples:500 ~seed:13 in
    let hops = Dht.mean_lookup_hops d ~samples:500 ~seed:13 in
    Printf.printf "    %s: success %.3f, mean hops %.2f\n%!" phase success hops;
    rows :=
      Json.Obj
        [
          ("section", Json.String "churn");
          ("phase", Json.String phase);
          ("lookup_success", Json.Float success);
          ("mean_hops", Json.Float hops);
        ]
      :: !rows
  in
  churn_row "before stabilization" d;
  churn_row "after stabilization " (Dht.rebuild d);
  emit_json ~fig:"dht" ~seed:3 ~wall_s:0.0 (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Scale trajectory: growth + broadcast up to a million nodes          *)
(* ------------------------------------------------------------------ *)

(* Not a paper figure: an engine benchmark.  Each tier builds an
   N-node system with [System.build_direct] (dense arenas, lazy SMR),
   broadcasts once from node 0, and runs until every node delivered —
   measuring nodes/sec grown, engine events/sec, deliveries/sec, and
   peak live heap words.  At N=10k the broadcast is repeated with
   [set_fast_paths false] + per-message (unbatched) network delivery —
   the pre-arena engine behaviour — and the speedup lands in the
   artifact's [extra.legacy_compare].

   Wall-derived fields (rates, wall seconds) are zeroed under
   ATUM_BENCH_JSON_CANON so same-seed artifacts stay byte-identical;
   the deterministic fields (event counts, deliveries, vgroups, peak
   words) still diff meaningfully. *)

let scale_bench () =
  section "Scale: growth + broadcast trajectory (dense arenas, batched gossip)";
  let module System = Atum_core.System in
  let module Network = Atum_sim.Network in
  let module Engine = Atum_sim.Engine in
  let seed = 97 in
  let tiers =
    match scale with
    | `Quick -> [ 1_000; 10_000 ]
    | `Default -> [ 1_000; 10_000; 100_000 ]
    | `Full -> [ 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let canon = W.Report.canonical () in
  let wall_field dt = if canon then 0.0 else dt in
  let rate num dt = if canon || dt <= 0.0 then 0.0 else float_of_int num /. dt in
  (* One tier: returns (row fields, deliveries/sec) so the 10k legacy
     comparison can reuse the exact same workload. *)
  let run_one ?(bcasts = 1) ~n ~legacy () =
    Gc.compact ();
    let params = Params.for_system_size ~seed n in
    let sys = System.create ~trace_capacity:(trace_cap_for ~n) params in
    if legacy then begin
      System.set_fast_paths sys false;
      Network.set_batching (System.network sys) false;
      Engine.set_pooling (System.engine sys) false
    end;
    ignore (System.attach_telemetry sys);
    let t0 = Unix.gettimeofday () in
    let ids = System.build_direct sys ~nodes:n () in
    let grow_wall = Unix.gettimeofday () -. t0 in
    let origins = Array.of_list ids in
    let metrics = System.metrics sys in
    let delivered () = Atum_sim.Metrics.counter metrics "broadcast.delivered" in
    let ev0 = Engine.events_processed (System.engine sys) in
    let t1 = Unix.gettimeofday () in
    (* Run each broadcast to saturation in sim-time slices; two slices
       in a row without progress abandons the tier instead of hanging
       it. *)
    for b = 1 to bcasts do
      ignore (System.broadcast sys ~from:origins.((b - 1) mod n) "scale-probe");
      let stalls = ref 0 in
      while delivered () < b * n && !stalls < 2 do
        let before = delivered () in
        System.run_for sys 120.0;
        if delivered () = before then incr stalls else stalls := 0
      done
    done;
    let expected = bcasts * n in
    let bcast_wall = Unix.gettimeofday () -. t1 in
    let events = Engine.events_processed (System.engine sys) - ev0 in
    let deliveries = delivered () in
    let peak_words = (Gc.stat ()).Gc.live_words in
    let row =
      Json.Obj
        [
          ("n", Json.Int n);
          ("legacy", Json.Bool legacy);
          ("vgroups", Json.Int (System.vgroup_count sys));
          ("delivered", Json.Int deliveries);
          ("delivered_all", Json.Bool (deliveries >= expected));
          ("engine_events", Json.Int events);
          ("grow_wall_s", Json.Float (wall_field grow_wall));
          ("nodes_per_sec", Json.Float (rate n grow_wall));
          ("bcast_wall_s", Json.Float (wall_field bcast_wall));
          ("events_per_sec", Json.Float (rate events bcast_wall));
          ("deliveries_per_sec", Json.Float (rate deliveries bcast_wall));
          ("peak_live_words", Json.Int (if canon then 0 else peak_words));
        ]
    in
    Printf.printf
      "  N=%-9d %-7s grow %8.2fs (%9.0f nodes/s)  bcast %8.2fs (%9.0f ev/s, %9.0f deliv/s)  %d/%d delivered, %.1fM words\n%!"
      n
      (if legacy then "legacy" else "fast")
      grow_wall
      (if grow_wall > 0.0 then float_of_int n /. grow_wall else 0.0)
      bcast_wall
      (if bcast_wall > 0.0 then float_of_int events /. bcast_wall else 0.0)
      (if bcast_wall > 0.0 then float_of_int deliveries /. bcast_wall else 0.0)
      deliveries n
      (float_of_int peak_words /. 1e6);
    (row, deliveries, bcast_wall)
  in
  let t_all = Unix.gettimeofday () in
  let rows =
    List.map (fun n -> let r, _, _ = run_one ~n ~legacy:false () in r) tiers
  in
  (* Before/after at 10k: same workload, legacy hot paths.  The
     speedup compares deliveries per wall second — the same logical
     work — so batching (which changes the engine event count) cannot
     flatter the result. *)
  let extra =
    if not (List.mem 10_000 tiers) then []
    else begin
      let _, new_deliv, new_wall = run_one ~n:10_000 ~legacy:false () in
      let _, leg_deliv, leg_wall = run_one ~n:10_000 ~legacy:true () in
      let new_rate = if new_wall > 0.0 then float_of_int new_deliv /. new_wall else 0.0 in
      let leg_rate = if leg_wall > 0.0 then float_of_int leg_deliv /. leg_wall else 0.0 in
      let speedup = if leg_rate > 0.0 then new_rate /. leg_rate else 0.0 in
      Printf.printf "  10k before/after: %.0f -> %.0f deliveries/s (speedup %.1fx)\n%!"
        leg_rate new_rate speedup;
      let z v = if canon then 0.0 else v in
      [
        ( "legacy_compare",
          Json.Obj
            [
              ("n", Json.Int 10_000);
              ("deliveries_per_sec", Json.Float (z new_rate));
              ("legacy_deliveries_per_sec", Json.Float (z leg_rate));
              ("speedup", Json.Float (z speedup));
            ] );
      ]
    end
  in
  emit_json ~fig:"scale" ~seed ~wall_s:(Unix.gettimeofday () -. t_all) ~extra rows

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let micro () =
  section "Micro-benchmarks (Bechamel, ns/op)";
  (* No JSON artifact: wall-clock estimates are inherently
     nondeterministic and would defeat the BENCH_*.json diff workflow. *)
  let open Bechamel in
  let data_1k = String.make 1024 'x' in
  let rng = Atum_util.Rng.create 1 in
  let hg = Atum_overlay.Hgraph.create ~cycles:6 rng (List.init 128 Fun.id) in
  let counts = Array.init 128 (fun i -> 40 + (i mod 7)) in
  let kr = Atum_crypto.Signature.create_keyring ~seed:1 in
  Atum_crypto.Signature.register kr "node-0";
  let tests =
    Test.make_grouped ~name:"atum"
      [
        Test.make ~name:"sha256-1KiB" (Staged.stage (fun () -> Atum_crypto.Sha256.digest data_1k));
        Test.make ~name:"hmac-64B" (Staged.stage (fun () -> Atum_crypto.Hmac.mac ~key:"k" "datadatadatadata"));
        Test.make ~name:"sign" (Staged.stage (fun () -> Atum_crypto.Signature.sign kr ~signer:"node-0" "msg"));
        Test.make ~name:"walk-step" (Staged.stage (fun () -> Atum_overlay.Random_walk.step_fast hg rng 0));
        Test.make ~name:"chi2-128cells" (Staged.stage (fun () -> Atum_util.Stats.chi2_uniform_test ~confidence:0.99 counts));
        Test.make ~name:"rng-bits64" (Staged.stage (fun () -> Atum_util.Rng.bits64 rng));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      let r = Hashtbl.find results name in
      match Analyze.OLS.estimates r with
      | Some (est :: _) -> Printf.printf "  %-24s %12.1f ns/op\n" name est
      | _ -> Printf.printf "  %-24s (no estimate)\n" name)
    (List.sort compare names);
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)

let all_figs =
  [
    ("table1", table1);
    ("fig4", fig4);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10_11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("ablation", ablation);
    ("dht", dht_bench);
    ("scale", scale_bench);
    ("micro", micro);
  ]

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let () =
  (* Strip --json / --out-dir DIR (CLI overrides the ATUM_BENCH_JSON
     env var); whatever remains names the figures to run. *)
  let json_flag = ref false in
  let out_dir = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: rest ->
      json_flag := true;
      parse acc rest
    | "--out-dir" :: dir :: rest ->
      out_dir := Some dir;
      parse acc rest
    | "--out-dir" :: [] ->
      prerr_endline "--out-dir requires a directory argument";
      exit 2
    | "--trace-cap" :: cap :: rest -> (
      match int_of_string_opt cap with
      | Some c when c > 0 ->
        trace_cap_flag := c;
        parse acc rest
      | _ ->
        prerr_endline "--trace-cap requires a positive integer";
        exit 2)
    | "--trace-cap" :: [] ->
      prerr_endline "--trace-cap requires a positive integer";
      exit 2
    | arg :: rest -> parse (arg :: acc) rest
  in
  let names = parse [] (List.tl (Array.to_list Sys.argv)) in
  let requested = if names = [] then List.map fst all_figs else names in
  (match (!json_flag, !out_dir) with
  | true, dir -> json_dir := Some (Option.value dir ~default:"_artifacts")
  | false, Some dir ->
    (* --out-dir redirects even env-enabled artifact runs. *)
    if !json_dir <> None then json_dir := Some dir
  | false, None -> ());
  Option.iter mkdir_p !json_dir;
  Printf.printf "Atum benchmark harness — scale=%s\n" scale_name;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name all_figs with
      | Some f -> f ()
      | None ->
        (match name with
        | "fig11" -> () (* generated together with fig10 *)
        | _ -> Printf.printf "unknown figure: %s\n" name))
    requested;
  Printf.printf "\nTotal wall time: %.1fs\n%!" (Unix.gettimeofday () -. t0)
